(* Tests for lib/serve: the NDJSON wire protocol, canonical taskset
   fingerprints, the verdict cache, and the request scheduler
   (DESIGN.md §11).

   This suite owns the failpoint injection state: it resets the
   catalogue up front (the CI failpoints matrix arms sites via
   MGRTS_FAILPOINTS for the whole run) and arms exactly what each case
   needs. *)

open Rt_model
module Json = Serve.Json
module Proto = Serve.Proto
module Fingerprint = Serve.Fingerprint
module Cache = Serve.Cache
module Scheduler = Serve.Scheduler

let () = Resilience.Failpoint.reset ()

let tuples_of_ts ts =
  Array.to_list
    (Array.map
       (fun (t : Task.t) -> (t.Task.offset, t.Task.wcet, t.Task.deadline, t.Task.period))
       (Taskset.tasks ts))

let mk_request ?(id = "t") ?solver ?wall_s ?nodes ?(seed = 0) ?(want_schedule = true)
    ?(no_cache = false) ts ~m =
  {
    Proto.id;
    tuples = tuples_of_ts ts;
    m;
    solver;
    wall_s;
    nodes;
    seed;
    want_schedule;
    no_cache;
  }

let small_config () =
  { (Scheduler.default_config ()) with Scheduler.workers = 1; jobs_per_request = 1 }

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  go 0

let with_scheduler ?(config = small_config ()) ?(emit = fun _ -> ()) f =
  let t = Scheduler.create ~config ~emit () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let line = {|{"id":"r1","n":-2.5,"ok":true,"xs":[1,2,3],"nested":{"s":"a\"b\n"}}|} in
  match Json.parse line with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok v ->
    Alcotest.(check (option string)) "id" (Some "r1") (Option.bind (Json.member "id" v) Json.to_str);
    Alcotest.(check (option (float 1e-9))) "n" (Some (-2.5))
      (Option.bind (Json.member "n" v) Json.to_float);
    Alcotest.(check (option bool)) "ok" (Some true) (Option.bind (Json.member "ok" v) Json.to_bool);
    (match Option.bind (Json.member "xs" v) Json.to_list with
    | Some xs -> Alcotest.(check (list (option int))) "xs" [ Some 1; Some 2; Some 3 ] (List.map Json.to_int xs)
    | None -> Alcotest.fail "xs missing");
    let nested = Option.get (Json.member "nested" v) in
    Alcotest.(check (option string)) "escapes" (Some "a\"b\n")
      (Option.bind (Json.member "s" nested) Json.to_str);
    (* Printing re-parses to the same structure. *)
    (match Json.parse (Json.to_string v) with
    | Ok v' -> Alcotest.(check bool) "reparse" true (v = v')
    | Error msg -> Alcotest.failf "reprint failed: %s" msg)

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted malformed %S" s
    | Error msg -> Alcotest.(check bool) ("offset in " ^ s) true (String.length msg > 0)
  in
  bad "not json";
  bad "{\"a\":1";
  bad "{\"a\":1} trailing";
  bad "[1,]";
  bad "\"unterminated";
  Alcotest.(check (option int)) "non-integral to_int" None (Json.to_int (Json.Num 1.5));
  Alcotest.(check (option int)) "huge to_int" None (Json.to_int (Json.Num 1e18))

(* ------------------------------------------------------------------ *)
(* Fingerprint *)

let shuffle_tasks seed ts =
  let st = Random.State.make [| seed |] in
  let arr = Taskset.tasks ts in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Taskset.of_tasks (Array.to_list arr)

let prop_fingerprint_reorder_invariant =
  Test_util.qtest ~count:200 "fingerprint key is task-order invariant"
    QCheck2.Gen.(pair (Test_util.instance_gen ()) (int_bound 1000))
    (fun ((ts, m), seed) ->
      let shuffled = shuffle_tasks seed ts in
      String.equal
        (Fingerprint.key (Fingerprint.of_taskset ts ~m))
        (Fingerprint.key (Fingerprint.of_taskset shuffled ~m)))

let prop_fingerprint_m_sensitive =
  Test_util.qtest ~count:50 "fingerprint key distinguishes m"
    (Test_util.instance_gen ())
    (fun (ts, m) ->
      not
        (String.equal
           (Fingerprint.key (Fingerprint.of_taskset ts ~m))
           (Fingerprint.key (Fingerprint.of_taskset ts ~m:(m + 1)))))

let test_fingerprint_relabel_roundtrip () =
  (* The running example, reordered: relabeling to canonical ids and back
     must be the identity, and the canonical schedule must verify against
     the canonically-sorted taskset. *)
  let ts = Taskset.of_tuples [ (1, 3, 4, 4); (0, 2, 2, 3); (0, 1, 2, 2) ] in
  let m = 2 in
  match Core.solve ts ~m with
  | Core.Feasible sched, _ ->
    let fp = Fingerprint.of_taskset ts ~m in
    let canon = Fingerprint.to_canonical fp sched in
    Alcotest.(check bool) "roundtrip identity" true
      (Schedule.equal sched (Fingerprint.from_canonical fp canon));
    let sorted_ts =
      Taskset.of_tasks
        (List.sort
           (fun (a : Task.t) (b : Task.t) ->
             let c = Int.compare a.Task.period b.Task.period in
             if c <> 0 then c
             else
               let c = Int.compare a.Task.deadline b.Task.deadline in
               if c <> 0 then c
               else
                 let c = Int.compare a.Task.wcet b.Task.wcet in
                 if c <> 0 then c else Int.compare a.Task.offset b.Task.offset)
           (Array.to_list (Taskset.tasks ts)))
    in
    (* Whatever the canonical order is, it is *a* reordering, so the
       relabeled schedule must be feasible for the field-sorted taskset. *)
    Alcotest.(check bool) "canonical schedule feasible for sorted taskset" true
      (match Verify.check_cyclic sorted_ts canon with Ok () -> true | Error _ -> false)
  | _ -> Alcotest.fail "running example must be feasible on 2 processors"

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_basics () =
  let c = Cache.create ~capacity:4 in
  Alcotest.(check bool) "miss" true (Cache.find c ~key:"a" = None);
  Cache.store c ~key:"a" Cache.Infeasible_entry;
  Alcotest.(check bool) "hit" true (Cache.find c ~key:"a" = Some Cache.Infeasible_entry);
  let st = Cache.stats c in
  Alcotest.(check int) "hits" 1 st.Cache.hits;
  Alcotest.(check int) "misses" 1 st.Cache.misses;
  Alcotest.(check int) "stores" 1 st.Cache.stores

let test_cache_eviction () =
  let c = Cache.create ~capacity:4 in
  for i = 0 to 15 do
    Cache.store c ~key:(string_of_int i) Cache.Infeasible_entry
  done;
  let st = Cache.stats c in
  Alcotest.(check bool) "evictions happened" true (st.Cache.evictions > 0);
  Alcotest.(check bool) "bounded" true (st.Cache.entries <= 4);
  (* The most recent key survives the LRU sweep. *)
  Alcotest.(check bool) "recent survives" true (Cache.find c ~key:"15" <> None)

(* ------------------------------------------------------------------ *)
(* Proto *)

let test_proto_parse () =
  (match Proto.parse_request ~fallback_id:"f" "{\"cmd\":\"stats\"}" with
  | Proto.Stats_request -> ()
  | _ -> Alcotest.fail "stats");
  (match Proto.parse_request ~fallback_id:"f" "{\"cmd\":\"shutdown\"}" with
  | Proto.Shutdown_request -> ()
  | _ -> Alcotest.fail "shutdown");
  (match Proto.parse_request ~fallback_id:"f" "nope" with
  | Proto.Malformed ("f", _) -> ()
  | _ -> Alcotest.fail "malformed line should carry the fallback id");
  (match Proto.parse_request ~fallback_id:"f" "{\"id\":\"x\",\"m\":2}" with
  | Proto.Malformed ("x", msg) ->
    Alcotest.(check bool) "names the missing field" true (contains msg "taskset")
  | _ -> Alcotest.fail "missing taskset should be malformed, keeping the request id");
  (match
     Proto.parse_request ~fallback_id:"f"
       "{\"id\":7,\"taskset\":[[0,1,2,2]],\"m\":1,\"wall_s\":0.5,\"nodes\":100,\"seed\":3,\
        \"schedule\":true,\"no_cache\":true}"
   with
  | Proto.Solve r ->
    Alcotest.(check string) "numeric id" "7" r.Proto.id;
    Alcotest.(check int) "m" 1 r.Proto.m;
    Alcotest.(check (list (pair int (pair int (pair int int))))) "tuples"
      [ (0, (1, (2, 2))) ]
      (List.map (fun (o, c, d, t) -> (o, (c, (d, t)))) r.Proto.tuples);
    Alcotest.(check bool) "wall" true (r.Proto.wall_s = Some 0.5);
    Alcotest.(check bool) "nodes" true (r.Proto.nodes = Some 100);
    Alcotest.(check int) "seed" 3 r.Proto.seed;
    Alcotest.(check bool) "schedule" true r.Proto.want_schedule;
    Alcotest.(check bool) "no_cache" true r.Proto.no_cache
  | _ -> Alcotest.fail "full solve request should parse");
  match
    Proto.parse_request ~fallback_id:"f" "{\"taskset\":[[0,1,2,2]],\"taskset_text\":\"x\",\"m\":1}"
  with
  | Proto.Malformed _ -> ()
  | _ -> Alcotest.fail "both taskset forms at once must be rejected"

let test_proto_response_json () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 2); (1, 3, 4, 4); (0, 2, 2, 3) ] in
  with_scheduler (fun t ->
      let resp = Scheduler.process t ~queue_s:0.125 (mk_request ts ~m:2) in
      match Json.parse (Proto.response_json resp) with
      | Error msg -> Alcotest.failf "response is not valid JSON: %s" msg
      | Ok v ->
        Alcotest.(check (option string)) "status" (Some "decided")
          (Option.bind (Json.member "status" v) Json.to_str);
        Alcotest.(check (option int)) "code" (Some 0)
          (Option.bind (Json.member "code" v) Json.to_int);
        Alcotest.(check (option string)) "verdict" (Some "feasible")
          (Option.bind (Json.member "verdict" v) Json.to_str);
        (match Option.bind (Json.member "schedule" v) Json.to_list with
        | Some rows -> Alcotest.(check int) "schedule rows = m" 2 (List.length rows)
        | None -> Alcotest.fail "schedule requested but missing");
        Alcotest.(check (option (float 1e-9))) "queue_s" (Some 0.125)
          (Option.bind (Json.member "queue_s" v) Json.to_float))

(* ------------------------------------------------------------------ *)
(* Scheduler: cache soundness, error classification, containment,
   admission control. *)

let verdict_of (r : Proto.response) = (r.Proto.r_code, r.Proto.r_verdict)

let props_sched = lazy (Scheduler.create ~config:(small_config ()) ~emit:(fun _ -> ()) ())

let prop_cache_hit_matches_fresh_solve =
  (* The satellite property: for any instance, a cached answer is the
     verdict a fresh solve produces — infeasible instances included —
     and a hit's schedule verifies against the *request's* task order.
     Front-door answers are never cached (they cost O(n) anyway), so the
     hit expectation only applies past the admission check. *)
  Test_util.qtest ~count:60 ~print:(fun ((ts, m), seed) ->
      Printf.sprintf "seed=%d %s" seed (Test_util.print_instance (ts, m)))
    "cache hit returns the fresh-solve verdict"
    QCheck2.Gen.(pair (Test_util.instance_gen ()) (int_bound 1000))
    (fun ((ts, m), seed) ->
      let t = Lazy.force props_sched in
      let fresh = Scheduler.process t ~queue_s:0. (mk_request ~no_cache:true ts ~m) in
      let first = Scheduler.process t ~queue_s:0. (mk_request ts ~m) in
      let shuffled = shuffle_tasks seed ts in
      let second = Scheduler.process t ~queue_s:0. (mk_request shuffled ~m) in
      let schedule_ok (r : Proto.response) for_ts =
        match r.Proto.r_schedule with
        | None -> r.Proto.r_verdict <> Some "feasible"
        | Some s -> (
          match Verify.check_cyclic for_ts s with Ok () -> true | Error _ -> false)
      in
      let front_door = fresh.Proto.r_solver = Some "front-door" in
      verdict_of first = verdict_of fresh
      && verdict_of second = verdict_of fresh
      && (front_door || second.Proto.r_cached)
      && schedule_ok first ts && schedule_ok second shuffled)

let test_cache_hit_infeasible () =
  (* Search-proved infeasibility (U = m, so the front door passes it):
     two tasks that both need the single slot before t=1. *)
  let ts = Taskset.of_tuples [ (0, 1, 1, 2); (0, 1, 1, 2) ] in
  with_scheduler (fun t ->
      let first = Scheduler.process t ~queue_s:0. (mk_request ts ~m:1) in
      Alcotest.(check (pair int (option string))) "fresh infeasible" (0, Some "infeasible")
        (verdict_of first);
      Alcotest.(check bool) "first is not a hit" false first.Proto.r_cached;
      let second = Scheduler.process t ~queue_s:0. (mk_request ts ~m:1) in
      Alcotest.(check (pair int (option string))) "cached infeasible" (0, Some "infeasible")
        (verdict_of second);
      Alcotest.(check bool) "second is a hit" true second.Proto.r_cached)

let test_front_door () =
  let ts = Taskset.of_tuples [ (0, 2, 2, 2); (0, 2, 2, 2); (0, 2, 2, 2) ] in
  with_scheduler (fun t ->
      let r = Scheduler.process t ~queue_s:0. (mk_request ts ~m:2) in
      Alcotest.(check (pair int (option string))) "verdict" (0, Some "infeasible") (verdict_of r);
      Alcotest.(check (option string)) "answered structurally" (Some "front-door")
        r.Proto.r_solver;
      let c = Scheduler.counters t in
      Alcotest.(check int) "counted" 1 c.Proto.front_door_infeasible;
      (* Exact, not float: U = m + 1/H must still reach the search door's
         *other* side — infeasible — while U = m passes through. *)
      let boundary = Taskset.of_tuples [ (0, 1, 1, 1) ] in
      let r = Scheduler.process t ~queue_s:0. (mk_request boundary ~m:1) in
      Alcotest.(check (pair int (option string))) "U = m is not front-door infeasible"
        (0, Some "feasible") (verdict_of r))

let test_error_classification () =
  with_scheduler (fun t ->
      let bad_m = Scheduler.process t ~queue_s:0. (mk_request (Taskset.of_tuples [ (0, 1, 2, 2) ]) ~m:0) in
      Alcotest.(check int) "m=0 is invalid input" 3 bad_m.Proto.r_code;
      let overflow =
        Scheduler.process t ~queue_s:0.
          {
            (mk_request (Taskset.of_tuples [ (0, 1, 2, 2) ]) ~m:2) with
            Proto.tuples =
              [ (0, 1, 2, max_int - 1); (0, 1, 2, max_int - 2); (0, 1, 2, max_int - 3) ];
          }
      in
      Alcotest.(check int) "hyperperiod overflow is code 4" 4 overflow.Proto.r_code;
      let c = Scheduler.counters t in
      Alcotest.(check int) "not counted as crashes" 0 c.Proto.crashed)

let test_crash_containment () =
  Resilience.Failpoint.reset ();
  Resilience.Failpoint.arm ~trigger:(Resilience.Failpoint.Nth 1) "serve.request"
    (Resilience.Failpoint.Raise (Resilience.Failpoint.Failure_msg "injected"));
  Fun.protect ~finally:Resilience.Failpoint.reset (fun () ->
      let ts = Taskset.of_tuples [ (0, 1, 2, 2); (1, 3, 4, 4); (0, 2, 2, 3) ] in
      with_scheduler (fun t ->
          let crashed = Scheduler.process t ~queue_s:0. (mk_request ~no_cache:true ts ~m:2) in
          Alcotest.(check int) "contained as code 5" 5 crashed.Proto.r_code;
          Alcotest.(check bool) "error mentions the injection" true
            (match crashed.Proto.r_error with
            | Some e -> String.length e > 0
            | None -> false);
          let after = Scheduler.process t ~queue_s:0. (mk_request ~no_cache:true ts ~m:2) in
          Alcotest.(check (pair int (option string))) "scheduler survives" (0, Some "feasible")
            (verdict_of after);
          let c = Scheduler.counters t in
          Alcotest.(check int) "crash counted" 1 c.Proto.crashed))

let emit_collector () =
  let mu = Mutex.create () in
  let acc = ref [] in
  let emit line =
    Mutex.lock mu;
    acc := line :: !acc;
    Mutex.unlock mu
  in
  let dump () =
    Mutex.lock mu;
    let lines = List.rev !acc in
    Mutex.unlock mu;
    lines
  in
  (emit, dump)

let json_field_string line field =
  match Json.parse line with
  | Ok v -> Option.bind (Json.member field v) Json.to_str
  | Error _ -> None

let test_handle_line_end_to_end () =
  Resilience.Failpoint.reset ();
  let emit, dump = emit_collector () in
  let t = Scheduler.create ~config:(small_config ()) ~emit () in
  let feed line = Scheduler.handle_line t ~fallback_id:"x" line in
  Alcotest.(check bool) "solve continues" true
    (feed "{\"id\":\"a\",\"taskset\":[[0,1,2,2],[1,3,4,4],[0,2,2,3]],\"m\":2}" = `Continue);
  Alcotest.(check bool) "malformed continues" true (feed "garbage" = `Continue);
  Alcotest.(check bool) "stats continues" true (feed "{\"cmd\":\"stats\"}" = `Continue);
  Alcotest.(check bool) "shutdown stops" true (feed "{\"cmd\":\"shutdown\"}" = `Shutdown);
  Scheduler.shutdown t;
  let lines = dump () in
  let ids = List.filter_map (fun l -> json_field_string l "id") lines in
  Alcotest.(check bool) "request a answered" true (List.mem "a" ids);
  Alcotest.(check bool) "malformed answered under fallback id" true (List.mem "x" ids);
  Alcotest.(check bool) "stats event present" true
    (List.exists (fun l -> json_field_string l "event" = Some "stats") lines);
  (* Shutdown drained the queue: the daemon rejects new work afterwards. *)
  Alcotest.(check bool) "post-shutdown solve continues" true
    (feed "{\"id\":\"late\",\"taskset\":[[0,1,2,2]],\"m\":1}" = `Continue);
  let late =
    List.find_opt
      (fun l -> json_field_string l "id" = Some "late")
      (dump ())
  in
  match late with
  | Some l -> (
    match Json.parse l with
    | Ok v ->
      Alcotest.(check (option int)) "rejected with code 6" (Some 6)
        (Option.bind (Json.member "code" v) Json.to_int)
    | Error msg -> Alcotest.failf "bad rejection line: %s" msg)
  | None -> Alcotest.fail "post-shutdown request must still be answered (rejected)"

let test_queue_full_rejection () =
  Resilience.Failpoint.reset ();
  (* Hold the single worker inside the (supervised) request scope for a
     beat, then overfill the capacity-1 queue behind it. *)
  Resilience.Failpoint.arm ~trigger:(Resilience.Failpoint.Nth 1) "serve.request"
    (Resilience.Failpoint.Delay 0.3);
  Fun.protect ~finally:Resilience.Failpoint.reset (fun () ->
      let emit, dump = emit_collector () in
      let config = { (small_config ()) with Scheduler.queue_capacity = 1 } in
      let t = Scheduler.create ~config ~emit () in
      let solve id = Printf.sprintf "{\"id\":%S,\"taskset\":[[0,1,2,2]],\"m\":1,\"no_cache\":true}" id in
      ignore (Scheduler.handle_line t ~fallback_id:"x" (solve "slow"));
      (* Wait for the worker to pick "slow" up so the queue is empty. *)
      let rec wait_in_flight tries =
        if tries = 0 then Alcotest.fail "worker never picked the request up"
        else if (Scheduler.counters t).Proto.in_flight < 1 then begin
          Unix.sleepf 0.01;
          wait_in_flight (tries - 1)
        end
      in
      wait_in_flight 200;
      ignore (Scheduler.handle_line t ~fallback_id:"x" (solve "queued"));
      ignore (Scheduler.handle_line t ~fallback_id:"x" (solve "overflow"));
      let c = Scheduler.counters t in
      Alcotest.(check int) "one rejection" 1 c.Proto.rejected;
      Scheduler.shutdown t;
      let lines = dump () in
      let code_of id =
        List.find_map
          (fun l ->
            match Json.parse l with
            | Ok v when Option.bind (Json.member "id" v) Json.to_str = Some id ->
              Option.bind (Json.member "code" v) Json.to_int
            | _ -> None)
          lines
      in
      Alcotest.(check (option int)) "slow solved" (Some 0) (code_of "slow");
      Alcotest.(check (option int)) "queued solved after drain" (Some 0) (code_of "queued");
      Alcotest.(check (option int)) "overflow rejected" (Some 6) (code_of "overflow"))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "fingerprint",
        [
          prop_fingerprint_reorder_invariant;
          prop_fingerprint_m_sensitive;
          Alcotest.test_case "relabel roundtrip" `Quick test_fingerprint_relabel_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "basics" `Quick test_cache_basics;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
        ] );
      ( "proto",
        [
          Alcotest.test_case "parse" `Quick test_proto_parse;
          Alcotest.test_case "response json" `Quick test_proto_response_json;
        ] );
      ( "scheduler",
        [
          prop_cache_hit_matches_fresh_solve;
          Alcotest.test_case "infeasible cache hit" `Quick test_cache_hit_infeasible;
          Alcotest.test_case "front door" `Quick test_front_door;
          Alcotest.test_case "error classification" `Quick test_error_classification;
          Alcotest.test_case "crash containment" `Quick test_crash_containment;
          Alcotest.test_case "handle_line end to end" `Quick test_handle_line_end_to_end;
          Alcotest.test_case "queue-full rejection" `Quick test_queue_full_rejection;
          Alcotest.test_case "join property-test workers" `Quick (fun () ->
              if Lazy.is_val props_sched then Scheduler.shutdown (Lazy.force props_sched));
        ] );
    ]
