(* Tests for the resilience layer: deterministic failpoints (scope gating,
   triggers, env-grammar parsing), crash containment in the portfolio race
   (single-crash survival, retry-with-degradation, the all-arms-crashed
   error), the stall watchdog, atomic artifact writes, and the typed
   top-level error surface of the Core facade. *)

open Rt_model
module F = Resilience.Failpoint
module S = Resilience.Supervise
module W = Resilience.Watchdog
module P = Portfolio
module O = Encodings.Outcome

let check = Alcotest.check
let running = Examples.running_example

(* This suite owns the injection state: clear anything the CI failpoints
   matrix armed through MGRTS_FAILPOINTS before asserting on our own. *)
let () = F.reset ()

let with_clean_failpoints f =
  F.reset ();
  Fun.protect ~finally:F.reset f

let expect_invalid name f =
  match f () with
  | () -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let arm_crashed (b : P.backend_stats) =
  match b.P.status with P.Crashed _ -> true | P.Ran | P.Stalled | P.Not_started -> false

let find_arm name (r : P.result) =
  match List.find_opt (fun (b : P.backend_stats) -> b.P.name = name) r.P.backends with
  | Some b -> b
  | None -> Alcotest.fail (Printf.sprintf "arm %S not reported" name)

(* An infeasible instance no local search can decide (r > 1): the
   regression workhorse shared with the portfolio suite. *)
let hard_instance () =
  let params = Gen.Generator.default ~n:12 ~m:(Gen.Generator.Fixed_m 4) ~tmax:7 in
  (Gen.Generator.batch ~seed:1 ~count:1 params).(0)

(* ------------------------------------------------------------------ *)
(* Failpoints                                                           *)

let test_disarmed_noop () =
  with_clean_failpoints @@ fun () ->
  Alcotest.(check bool) "nothing armed" false (F.armed ());
  (* The solver-checkpoint fast path: must be a silent no-op anywhere. *)
  F.hit "csp2.node";
  F.with_scope (fun () -> F.hit "csp2.node");
  check Alcotest.int "no counters kept" 0 (F.hits "csp2.node")

let test_scope_gating () =
  with_clean_failpoints @@ fun () ->
  F.arm "t.site" (F.Raise F.Out_of_memory);
  Alcotest.(check bool) "armed" true (F.armed ());
  (* Outside a supervision scope the armed site must not fire: the whole
     suite runs under the CI injection matrix on this guarantee. *)
  F.hit "t.site";
  Alcotest.(check bool) "outside scope" false (F.in_scope ());
  Alcotest.check_raises "fires in scope" Stdlib.Out_of_memory (fun () ->
      F.with_scope (fun () -> F.hit "t.site"));
  Alcotest.(check bool) "scope restored after raise" false (F.in_scope ())

let fired site =
  match F.with_scope (fun () -> F.hit site) with
  | () -> false
  | exception Stdlib.Out_of_memory -> true

let test_trigger_nth () =
  with_clean_failpoints @@ fun () ->
  F.arm ~trigger:(F.Nth 2) "t.nth" (F.Raise F.Out_of_memory);
  Alcotest.(check bool) "1st hit passes" false (fired "t.nth");
  Alcotest.(check bool) "2nd hit fires" true (fired "t.nth");
  Alcotest.(check bool) "3rd hit passes (one-shot)" false (fired "t.nth");
  check Alcotest.int "hits counted" 3 (F.hits "t.nth")

let test_trigger_from () =
  with_clean_failpoints @@ fun () ->
  F.arm ~trigger:(F.From 2) "t.from" (F.Raise F.Out_of_memory);
  Alcotest.(check bool) "1st hit passes" false (fired "t.from");
  Alcotest.(check bool) "2nd hit fires" true (fired "t.from");
  Alcotest.(check bool) "3rd hit fires too" true (fired "t.from")

let test_delay_action () =
  with_clean_failpoints @@ fun () ->
  F.arm "t.delay" (F.Delay 0.02);
  let t0 = Prelude.Timer.start () in
  F.with_scope (fun () -> F.hit "t.delay");
  Alcotest.(check bool) "slept" true (Prelude.Timer.elapsed t0 >= 0.01)

let test_disarm_and_reset () =
  with_clean_failpoints @@ fun () ->
  F.arm "t.a" (F.Raise F.Out_of_memory);
  F.arm "t.b" (F.Raise F.Out_of_memory);
  F.disarm "t.a";
  Alcotest.(check bool) "t.a disarmed" false (fired "t.a");
  Alcotest.(check bool) "t.b still armed" true (fired "t.b");
  F.reset ();
  Alcotest.(check bool) "reset disarms all" false (F.armed ())

let test_arm_spec () =
  with_clean_failpoints @@ fun () ->
  F.arm_spec "csp2.node=delay:1ms@2,sat.propagate=raise:Stack_overflow";
  Alcotest.(check bool) "armed from spec" true (F.armed ());
  (match F.with_scope (fun () -> F.hit "sat.propagate") with
  | () -> Alcotest.fail "sat.propagate should raise"
  | exception Stdlib.Stack_overflow -> ());
  expect_invalid "unknown site" (fun () -> F.arm_spec "bogus=raise:Out_of_memory");
  expect_invalid "malformed action" (fun () -> F.arm_spec "csp2.node=explode");
  expect_invalid "malformed trigger" (fun () -> F.arm_spec "csp2.node=delay:1ms@zero");
  expect_invalid "unknown exception" (fun () -> F.arm_spec "csp2.node=raise:Exit")

let test_catalogue_complete () =
  (* Every instrumented checkpoint is armable through the validated
     user-facing grammar. *)
  List.iter
    (fun site ->
      with_clean_failpoints @@ fun () ->
      F.arm_spec (site ^ "=raise:Failure:probe");
      Alcotest.(check bool) (site ^ " armable") true (F.armed ()))
    F.catalogue

(* ------------------------------------------------------------------ *)
(* Supervision                                                          *)

let test_protect_ok () =
  match S.protect ~name:"t" (fun () -> 42) with
  | Ok v -> check Alcotest.int "value through" 42 v
  | Error c -> Alcotest.fail ("unexpected crash: " ^ S.crash_message c)

let test_protect_crash () =
  match S.protect ~name:"t" (fun () -> raise Stdlib.Out_of_memory) with
  | Ok () -> Alcotest.fail "crash not contained"
  | Error c -> check Alcotest.string "exception text" "Out of memory" (S.crash_message c)

let test_protect_enters_scope () =
  with_clean_failpoints @@ fun () ->
  match S.protect ~name:"t" (fun () -> F.in_scope ()) with
  | Ok in_scope ->
    Alcotest.(check bool) "protect enters the injection scope" true in_scope;
    Alcotest.(check bool) "and leaves it" false (F.in_scope ())
  | Error c -> Alcotest.fail ("unexpected crash: " ^ S.crash_message c)

let test_protect_passes_break () =
  Alcotest.check_raises "Sys.Break escapes containment" Sys.Break (fun () ->
      ignore (S.protect ~name:"t" (fun () -> raise Sys.Break)))

(* ------------------------------------------------------------------ *)
(* Atomic artifacts                                                     *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let no_temporaries path =
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.for_all
    (fun entry ->
      not
        (String.length entry > String.length base
        && String.sub entry 0 (String.length base) = base))
    (Sys.readdir dir)

let test_write_atomic () =
  let path = Filename.temp_file "mgrts_artifact" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) @@ fun () ->
  Resilience.Artifact.write_atomic path "{\"v\": 1}\n";
  check Alcotest.string "written" "{\"v\": 1}\n" (read_file path);
  Alcotest.(check bool) "no temporary left" true (no_temporaries path);
  (* Overwrite: readers see either the old or the new complete file. *)
  Resilience.Artifact.write_atomic path "{\"v\": 2}\n";
  check Alcotest.string "replaced" "{\"v\": 2}\n" (read_file path)

(* Regression: the writer used the fixed temporary [path ^ ".tmp"], so two
   concurrent writers clobbered each other's half-written bytes and the
   final rename could install a torn mix.  With per-writer temporaries the
   destination must always hold exactly one writer's complete contents,
   and no temporary may survive. *)
let test_write_atomic_concurrent () =
  let path = Filename.temp_file "mgrts_artifact" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) @@ fun () ->
  let payload tag = Printf.sprintf "{\"writer\": %d, \"pad\": \"%s\"}\n" tag (String.make 8192 (Char.chr (Char.code 'a' + tag))) in
  let writers = 4 and rounds = 25 in
  let domains =
    List.init writers (fun tag ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Resilience.Artifact.write_atomic path (payload tag)
            done))
  in
  List.iter Domain.join domains;
  let final = read_file path in
  Alcotest.(check bool) "destination is one writer's complete contents" true
    (List.exists (fun tag -> final = payload tag) (List.init writers Fun.id));
  Alcotest.(check bool) "no temporary left" true (no_temporaries path)

(* Regression for the fsync bugfix: the write path now goes through a raw
   fd (openfile/write/fsync) — pin that the full contents land even for
   payloads far beyond one write(2)'s typical short-write boundary, and
   that a failed write (unwritable directory) leaves no destination and no
   temporary behind. *)
let test_write_atomic_large_and_error () =
  let path = Filename.temp_file "mgrts_artifact" ".json" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) @@ fun () ->
  let big = String.concat "" (List.init 4096 (fun i -> Printf.sprintf "{\"row\": %d}\n" i)) in
  Resilience.Artifact.write_atomic path big;
  check Alcotest.string "large payload intact" big (read_file path);
  let missing_dir = Filename.concat (Filename.dirname path) "mgrts_no_such_dir" in
  (match Resilience.Artifact.write_atomic (Filename.concat missing_dir "x.json") "{}\n" with
  | () -> Alcotest.fail "write into a missing directory should raise"
  | exception Unix.Unix_error _ -> ()
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "no stray destination" false (Sys.file_exists missing_dir)

(* ------------------------------------------------------------------ *)
(* Watchdog                                                             *)

let with_heartbeat_interval dt f =
  let old = Telemetry.heartbeat_interval () in
  Telemetry.set_heartbeat_interval dt;
  Fun.protect ~finally:(fun () -> Telemetry.set_heartbeat_interval old) f

let test_watchdog_cancels_stalled () =
  with_heartbeat_interval 0.02 @@ fun () ->
  let w = W.create ~stall_beats:5. () in
  (* 100 ms window *)
  let cancelled = Atomic.make 0 in
  let live = W.watch w ~name:"live" ~cancel:(fun () -> ()) in
  let stuck = W.watch w ~name:"stuck" ~cancel:(fun () -> Atomic.incr cancelled) in
  W.start w;
  Fun.protect ~finally:(fun () -> W.stop w) (fun () ->
      for _ = 1 to 30 do
        Unix.sleepf 0.01;
        W.touch live
      done);
  Alcotest.(check bool) "silent arm stalled" true (W.stalled stuck);
  Alcotest.(check bool) "touched arm alive" false (W.stalled live);
  check Alcotest.int "cancel invoked exactly once" 1 (Atomic.get cancelled);
  W.unwatch live;
  W.unwatch stuck

let test_watchdog_beats_keep_alive () =
  with_heartbeat_interval 0.01 @@ fun () ->
  let w = W.create ~stall_beats:10. () in
  (* 100 ms window *)
  let c = W.watch w ~name:"beats" ~cancel:(fun () -> ()) in
  W.start w;
  Fun.protect ~finally:(fun () -> W.stop w) (fun () ->
      (* No manual touches: only the telemetry beats this domain emits
         inside [with_cell] refresh the clock. *)
      W.with_cell c (fun () ->
          for i = 1 to 20 do
            Unix.sleepf 0.01;
            Telemetry.heartbeat ~name:"test" ~nodes:i ~fails:0 ~depth:1
          done));
  Alcotest.(check bool) "beats kept the arm alive" false (W.stalled c);
  W.unwatch c

(* ------------------------------------------------------------------ *)
(* Portfolio containment                                                *)

let injection_specs = [ P.Csp2_opt Csp2.Heuristic.DC; P.Csp2 Csp2.Heuristic.DC; P.Csp1_sat ]

let test_single_crash_contained () =
  with_clean_failpoints @@ fun () ->
  F.arm ~trigger:(F.Nth 1) "portfolio.arm_start" (F.Raise F.Out_of_memory);
  let r = P.solve ~specs:injection_specs ~jobs:1 ~analyze:false ~seed:1 running ~m:2 in
  (match r.P.verdict with
  | O.Feasible sched ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible running sched)
  | O.Infeasible | O.Limit | O.Memout _ ->
    Alcotest.fail "running example is feasible on m=2 despite one crashed arm");
  Alcotest.(check bool) "the crash is visible in the stats" true
    (List.exists arm_crashed r.P.backends);
  Alcotest.(check bool) "a surviving arm won" true (r.P.winner <> None)

let prop_containment_preserves_verdict =
  Test_util.qtest ~count:20 "crashing one arm never changes a decided verdict"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      F.reset ();
      let budget () = Prelude.Timer.budget ~wall_s:5.0 () in
      let baseline =
        P.solve ~specs:injection_specs ~jobs:1 ~analyze:false ~seed:7 ~budget:(budget ()) ts ~m
      in
      F.arm ~trigger:(F.Nth 1) "portfolio.arm_start" (F.Raise F.Out_of_memory);
      let injected =
        P.solve ~specs:injection_specs ~jobs:1 ~analyze:false ~seed:7 ~budget:(budget ()) ts ~m
      in
      F.reset ();
      let crash_seen = List.exists arm_crashed injected.P.backends in
      match (baseline.P.verdict, injected.P.verdict) with
      | O.Feasible _, O.Feasible sched -> crash_seen && Verify.is_feasible ts sched
      | O.Infeasible, O.Infeasible -> crash_seen
      (* An undecided run on either side pins nothing — tiny instances
         under a 5 s budget essentially never hit this. *)
      | (O.Limit | O.Memout _), _ | _, (O.Limit | O.Memout _) -> true
      | O.Feasible _, O.Infeasible | O.Infeasible, O.Feasible _ -> false)

let test_retry_csp2opt () =
  with_clean_failpoints @@ fun () ->
  F.arm ~trigger:(F.Nth 1) "portfolio.arm_start" (F.Raise F.Out_of_memory);
  let r = P.solve ~specs:[ P.Csp2_opt Csp2.Heuristic.DC ] ~jobs:1 ~analyze:false running ~m:2 in
  Alcotest.(check bool) "retry decided" true (O.is_feasible r.P.verdict);
  let original = find_arm "csp2-opt+D-C" r in
  Alcotest.(check bool) "original crashed" true (arm_crashed original);
  Alcotest.(check bool) "crashed arm reports no outcome" true (original.P.outcome = None);
  let retry = find_arm "csp2-opt+D-C(retry)" r in
  Alcotest.(check bool) "degraded retry won" true retry.P.winner;
  check Alcotest.(option string) "winner name" (Some "csp2-opt+D-C(retry)") r.P.winner

let test_retry_sat () =
  with_clean_failpoints @@ fun () ->
  F.arm ~trigger:(F.Nth 1) "portfolio.arm_start" (F.Raise F.Out_of_memory);
  let r = P.solve ~specs:[ P.Csp1_sat ] ~jobs:1 ~analyze:false running ~m:2 in
  Alcotest.(check bool) "retry decided" true (O.is_feasible r.P.verdict);
  Alcotest.(check bool) "original crashed" true (arm_crashed (find_arm "csp1-sat" r));
  Alcotest.(check bool) "reseeded retry won" true (find_arm "csp1-sat(retry)" r).P.winner

let test_all_arms_crashed () =
  with_clean_failpoints @@ fun () ->
  F.arm "portfolio.arm_start" (F.Raise F.Out_of_memory);
  (* Neither of these specs has a degraded retry: exactly two crashes. *)
  match
    P.solve ~specs:[ P.Csp2 Csp2.Heuristic.DC; P.Local_search ] ~jobs:1 ~analyze:false running
      ~m:2
  with
  | _ -> Alcotest.fail "expected All_arms_crashed"
  | exception P.All_arms_crashed crashes ->
    check Alcotest.int "both arms listed" 2 (List.length crashes);
    List.iter (fun (_, e) -> check Alcotest.string "exception text" "Out of memory" e) crashes

let test_retry_capped_at_one () =
  with_clean_failpoints @@ fun () ->
  (* An always-firing crash kills the original *and* its one degraded
     retry; the race must then give up typed rather than loop. *)
  F.arm "portfolio.arm_start" (F.Raise F.Out_of_memory);
  match P.solve ~specs:[ P.Csp1_sat ] ~jobs:1 ~analyze:false running ~m:2 with
  | _ -> Alcotest.fail "expected All_arms_crashed"
  | exception P.All_arms_crashed crashes ->
    let names = List.map fst crashes in
    check
      Alcotest.(list string)
      "original and single retry, nothing more"
      [ "csp1-sat"; "csp1-sat(retry)" ]
      (List.sort compare names)

let test_analyzer_crash_contained () =
  with_clean_failpoints @@ fun () ->
  F.arm "portfolio.analysis" (F.Raise F.Out_of_memory);
  let r = P.solve ~jobs:2 running ~m:2 in
  Alcotest.(check bool) "race decided without the analyzer" true (O.is_feasible r.P.verdict);
  Alcotest.(check bool) "analyzer crash recorded" true
    (arm_crashed (find_arm P.analysis_arm_name r))

let test_stall_watchdog_cancels_arm () =
  with_clean_failpoints @@ fun () ->
  with_heartbeat_interval 0.02 @@ fun () ->
  (* First arm popped is local search, frozen for 0.4 s at start — far
     past the 3-beat (60 ms) stall window and emitting no heartbeat.  The
     watchdog must cancel just that arm; csp2 then backfills the domain
     and refutes the instance. *)
  F.arm ~trigger:(F.Nth 1) "portfolio.arm_start" (F.Delay 0.4);
  let ts, m = hard_instance () in
  let r =
    P.solve
      ~specs:[ P.Local_search; P.Csp2 Csp2.Heuristic.DC ]
      ~jobs:1 ~analyze:false ~stall_beats:3. ts ~m
  in
  (match r.P.verdict with
  | O.Infeasible -> ()
  | O.Feasible _ | O.Limit | O.Memout _ ->
    Alcotest.fail "r > 1: expected the surviving complete arm to refute");
  check Alcotest.(option string) "csp2 won" (Some "csp2+D-C") r.P.winner;
  let ls = find_arm "local-search" r in
  Alcotest.(check bool) "frozen arm marked stalled" true (ls.P.status = P.Stalled)

(* ------------------------------------------------------------------ *)
(* Core error surface                                                   *)

let test_error_classifier () =
  (match Core.error_of_exn (Invalid_argument "bad m") with
  | Some (Core.Invalid_input "bad m") -> ()
  | _ -> Alcotest.fail "Invalid_argument -> Invalid_input");
  (match Core.error_of_exn (Prelude.Intmath.Overflow "lcm") with
  | Some (Core.Overflow _) -> ()
  | _ -> Alcotest.fail "Intmath.Overflow -> Overflow");
  (* Taskset.of_tasks reports hyperperiod overflow as Invalid_argument;
     the classifier must not lose the overflow nature. *)
  (match Core.error_of_exn (Invalid_argument "Taskset.of_tasks: hyperperiod overflow (big)") with
  | Some (Core.Overflow _) -> ()
  | _ -> Alcotest.fail "overflow-flavored Invalid_argument -> Overflow");
  (match Core.error_of_exn (P.All_arms_crashed [ ("a", "boom") ]) with
  | Some (Core.All_arms_crashed [ ("a", "boom") ]) -> ()
  | _ -> Alcotest.fail "All_arms_crashed passes through");
  (match Core.error_of_exn Not_found with
  | None -> ()
  | Some _ -> Alcotest.fail "unrelated exceptions are not classified")

let test_error_exit_codes () =
  check Alcotest.int "invalid input" 3 (Core.error_exit_code (Core.Invalid_input "x"));
  check Alcotest.int "overflow" 4 (Core.error_exit_code (Core.Overflow "x"));
  check Alcotest.int "all arms crashed" 5 (Core.error_exit_code (Core.All_arms_crashed []));
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("message non-empty: " ^ Core.error_message e)
        true
        (String.length (Core.error_message e) > 0))
    [ Core.Invalid_input "x"; Core.Overflow "x"; Core.All_arms_crashed [ ("a", "boom") ] ]

let test_solve_result () =
  (match Core.solve_result running ~m:2 with
  | Ok (Core.Feasible _, _) -> ()
  | Ok _ -> Alcotest.fail "running example is feasible on m=2"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Core.error_message e));
  match Core.solve_result running ~m:0 with
  | Error (Core.Invalid_input _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "m=0 must classify as invalid input"

let test_solve_result_all_arms_crashed () =
  with_clean_failpoints @@ fun () ->
  F.arm "portfolio.arm_start" (F.Raise F.Out_of_memory);
  match Core.solve_result ~solver:(Core.Portfolio 2) running ~m:2 with
  | Error (Core.All_arms_crashed crashes) ->
    Alcotest.(check bool) "crash list non-empty" true (crashes <> [])
  | Ok _ -> Alcotest.fail "every arm crashes: no verdict possible"
  | Error e -> Alcotest.fail ("wrong error: " ^ Core.error_message e)

let () =
  Alcotest.run "resilience"
    [
      ( "failpoint",
        [
          Alcotest.test_case "disarmed is a no-op" `Quick test_disarmed_noop;
          Alcotest.test_case "scope gating" `Quick test_scope_gating;
          Alcotest.test_case "Nth trigger is one-shot" `Quick test_trigger_nth;
          Alcotest.test_case "From trigger persists" `Quick test_trigger_from;
          Alcotest.test_case "delay action" `Quick test_delay_action;
          Alcotest.test_case "disarm and reset" `Quick test_disarm_and_reset;
          Alcotest.test_case "spec grammar" `Quick test_arm_spec;
          Alcotest.test_case "catalogue armable" `Quick test_catalogue_complete;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "value through" `Quick test_protect_ok;
          Alcotest.test_case "crash contained" `Quick test_protect_crash;
          Alcotest.test_case "enters injection scope" `Quick test_protect_enters_scope;
          Alcotest.test_case "Sys.Break escapes" `Quick test_protect_passes_break;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "atomic write" `Quick test_write_atomic;
          Alcotest.test_case "concurrent writers" `Quick test_write_atomic_concurrent;
          Alcotest.test_case "large payload and error path" `Quick
            test_write_atomic_large_and_error;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "cancels the stalled arm only" `Quick test_watchdog_cancels_stalled;
          Alcotest.test_case "beats keep an arm alive" `Quick test_watchdog_beats_keep_alive;
        ] );
      ( "containment",
        [
          Alcotest.test_case "single crash contained" `Quick test_single_crash_contained;
          Alcotest.test_case "csp2-opt retries degraded" `Quick test_retry_csp2opt;
          Alcotest.test_case "sat retries reseeded" `Quick test_retry_sat;
          Alcotest.test_case "all arms crashed is typed" `Quick test_all_arms_crashed;
          Alcotest.test_case "one retry, not a loop" `Quick test_retry_capped_at_one;
          Alcotest.test_case "analyzer crash contained" `Quick test_analyzer_crash_contained;
          Alcotest.test_case "stall watchdog cancels arm" `Quick test_stall_watchdog_cancels_arm;
          prop_containment_preserves_verdict;
        ] );
      ( "errors",
        [
          Alcotest.test_case "classifier" `Quick test_error_classifier;
          Alcotest.test_case "exit codes and messages" `Quick test_error_exit_codes;
          Alcotest.test_case "solve_result" `Quick test_solve_result;
          Alcotest.test_case "solve_result all-arms-crashed" `Quick
            test_solve_result_all_arms_crashed;
        ] );
    ]
