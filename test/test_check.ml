(* Tier-1 coverage for the concurrency model checker itself (lib/check).

   The scenarios are the checker's real workload; these tests pin the
   engine's contract: the production protocols verify clean, the
   exploration is deterministic, and — the mutation gate — the checker
   actually catches the bug class it was built for, with a schedule
   that replays. *)

let scenario name =
  match Check.Scenarios.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scenario %s" name

let explore_ok name =
  let s = scenario name in
  let o = Check.Engine.explore s.mode s.body in
  (match o.violation with
  | None -> ()
  | Some v ->
    Alcotest.failf "%s: unexpected violation %s (%d steps)" name v.v_kind
      (List.length v.v_schedule));
  o

(* ------------------------------------------------------------------ *)

let test_deque_single_element () =
  let o = explore_ok "deque-pop-vs-steal" in
  (* The CAS arbitration has more than one interleaving by construction. *)
  Alcotest.(check bool) "explored several interleavings" true (o.executions > 1)

let test_deque_grow_during_steal () =
  let o = explore_ok "deque-grow-during-steal" in
  Alcotest.(check bool) "explored several interleavings" true (o.executions > 100)

let test_race_and_barrier () =
  ignore (explore_ok "race-unique-winner");
  ignore (explore_ok "race-cancel-vs-claim");
  ignore (explore_ok "barrier-no-lost-wakeup")

let test_pool_handshake () =
  ignore (explore_ok "pool-handshake");
  ignore (explore_ok "pool-retire-after-assign")

let test_ring () =
  ignore (explore_ok "ring-register-race");
  ignore (explore_ok "ring-overflow-conservation")

(* Random mode must be a pure function of the seed: same seed, same
   walks, same counters — that is what makes a CI failure reproducible
   locally. *)
let test_random_deterministic_given_seed () =
  let s = scenario "deque-grow-during-steal" in
  let run seed =
    let o = Check.Engine.explore (Check.Engine.Random { walks = 40; seed }) s.body in
    (o.executions, o.choice_points, o.max_depth, Option.is_some o.violation)
  in
  let a = run 7 and b = run 7 in
  Alcotest.(check (pair (pair int int) (pair int bool)))
    "same seed, same exploration"
    (let w, x, y, z = a in ((w, x), (y, z)))
    (let w, x, y, z = b in ((w, x), (y, z)));
  let c = run 7 and d = run 1234 in
  Alcotest.(check bool) "both seeds explore all walks" true (let e, _, _, _ = c in e = 40);
  let e, _, _, _ = d in
  Alcotest.(check int) "walk count is seed-independent" 40 e

(* The mutation gate, as a unit test: the deliberately reverted pool
   job-slot clear (the historical PR-6 bug, behind [defer_job_clear])
   must be caught, and the recorded schedule must replay. *)
let test_mutation_caught_and_replays () =
  let s = scenario "pool-defer-clear" in
  Alcotest.(check bool) "scenario is marked as a mutation" true s.mutation;
  let o = Check.Engine.explore s.mode s.body in
  match o.violation with
  | None -> Alcotest.fail "checker missed the deferred-job-clear bug"
  | Some v -> (
    Alcotest.(check bool) "violation is a deadlock" true
      (String.length v.v_kind >= 8 && String.sub v.v_kind 0 8 = "deadlock");
    match Check.Engine.replay s.body v.v_schedule with
    | Some v' -> Alcotest.(check string) "replay reproduces the kind" v.v_kind v'.v_kind
    | None -> Alcotest.fail "recorded schedule did not replay")

(* The healthy protocol, same scenario shape, must be clean — the gate
   discriminates, it does not just always fire. *)
let test_healthy_pool_not_flagged () = ignore (explore_ok "pool-handshake")

let () =
  Alcotest.run "check"
    [
      ( "engine",
        [
          Alcotest.test_case "deque single element" `Quick test_deque_single_element;
          Alcotest.test_case "deque grow during steal" `Quick test_deque_grow_during_steal;
          Alcotest.test_case "race and barrier" `Quick test_race_and_barrier;
          Alcotest.test_case "pool handshake" `Quick test_pool_handshake;
          Alcotest.test_case "telemetry ring" `Quick test_ring;
          Alcotest.test_case "random mode deterministic given seed" `Quick
            test_random_deterministic_given_seed;
        ] );
      ( "mutation-gate",
        [
          Alcotest.test_case "pool defer-clear caught and replays" `Quick
            test_mutation_caught_and_replays;
          Alcotest.test_case "healthy pool not flagged" `Quick test_healthy_pool_not_flagged;
        ] );
    ]
