(* Tests for the dedicated CSP2 solvers (identical and heterogeneous):
   agreement with the generic encodings, heuristic behaviour, determinism,
   wrap-around handling, and the heterogeneous idle-necessity regression. *)

open Rt_model
module O = Encodings.Outcome

let check = Alcotest.check
let qtest = Test_util.qtest

let running = Examples.running_example
let budget () = Prelude.Timer.budget ~wall_s:5.0 ()
let decided = function O.Feasible _ | O.Infeasible -> true | O.Limit | O.Memout _ -> false

(* ------------------------------------------------------------------ *)
(* Heuristic module                                                     *)

let test_heuristic_keys () =
  let t = Task.make ~offset:0 ~wcet:2 ~deadline:3 ~period:5 () in
  check Alcotest.int "RM" 5 (Csp2.Heuristic.key Csp2.Heuristic.RM t);
  check Alcotest.int "DM" 3 (Csp2.Heuristic.key Csp2.Heuristic.DM t);
  check Alcotest.int "TC" 3 (Csp2.Heuristic.key Csp2.Heuristic.TC t);
  check Alcotest.int "DC" 1 (Csp2.Heuristic.key Csp2.Heuristic.DC t)

let test_heuristic_order () =
  (* DC keys for the running example: τ1: 2-1=1, τ2: 4-3=1, τ3: 2-2=0. *)
  Alcotest.(check (array int)) "DC order" [| 2; 0; 1 |]
    (Csp2.Heuristic.order Csp2.Heuristic.DC running);
  let ranks = Csp2.Heuristic.rank Csp2.Heuristic.DC running in
  check Alcotest.int "τ3 first" 0 ranks.(2);
  (* Ranks are a permutation. *)
  let sorted = Array.copy ranks in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" [| 0; 1; 2 |] sorted

let test_heuristic_strings () =
  List.iter
    (fun h ->
      match Csp2.Heuristic.of_string (Csp2.Heuristic.to_string h) with
      | Some h' -> Alcotest.(check bool) "roundtrip" true (h = h')
      | None -> Alcotest.fail "roundtrip failed")
    Csp2.Heuristic.all;
  Alcotest.(check bool) "unknown" true (Csp2.Heuristic.of_string "zzz" = None)

(* ------------------------------------------------------------------ *)
(* Identical-platform solver                                            *)

let test_running_example_all_heuristics () =
  List.iter
    (fun h ->
      match Csp2.Solver.solve ~heuristic:h running ~m:2 with
      | O.Feasible sched, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "verified (%s)" (Csp2.Heuristic.to_string h))
          true (Verify.is_feasible running sched)
      | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "running example is feasible")
    Csp2.Heuristic.all

let test_infeasible_proof () =
  match Csp2.Solver.solve running ~m:1 with
  | O.Infeasible, _ -> ()
  | (O.Feasible _ | O.Limit | O.Memout _), _ -> Alcotest.fail "m=1 is infeasible (r > 1)"

let test_deterministic () =
  let run () =
    match Csp2.Solver.solve running ~m:2 with
    | O.Feasible sched, stats -> (sched, stats.Csp2.Solver.nodes)
    | _ -> Alcotest.fail "feasible"
  in
  let s1, n1 = run () and s2, n2 = run () in
  Alcotest.(check bool) "same schedule" true (Schedule.equal s1 s2);
  check Alcotest.int "same node count" n1 n2

let test_budget_limit () =
  (* A hard instance: r close to 1 with many tasks. *)
  let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:5 ~count:30 params in
  let limited = ref false in
  Array.iter
    (fun (ts, m) ->
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~nodes:50 ()) ts ~m with
      | O.Limit, _ -> limited := true
      | (O.Feasible _ | O.Infeasible | O.Memout _), _ -> ())
    instances;
  Alcotest.(check bool) "some run hits the node budget" true !limited

let test_wall_budget_respected () =
  (* Regression: with urgency propagation off, [advance] enumerates up to
     C(n_free, k) candidate subsets between two outer-loop polls, so a
     masked nodes-mod-256 check there let a 50 ms wall budget overshoot by
     orders of magnitude (minutes on this very instance).  The budget is
     now polled on every node, inside [attempt]. *)
  let params = Gen.Generator.default ~n:12 ~m:(Gen.Generator.Fixed_m 4) ~tmax:7 in
  let ts, m = (Gen.Generator.batch ~seed:2 ~count:1 params).(0) in
  let wall = 0.05 in
  let t0 = Prelude.Timer.start () in
  let outcome, _ =
    Csp2.Solver.solve ~urgency:false ~budget:(Prelude.Timer.budget ~wall_s:wall ()) ts ~m
  in
  let elapsed = Prelude.Timer.elapsed t0 in
  (match outcome with
  | O.Limit -> ()
  | O.Feasible _ | O.Infeasible | O.Memout _ ->
    Alcotest.fail "expected the wall budget to cut the search short");
  Alcotest.(check bool)
    (Printf.sprintf "returned within 2x the wall budget (took %.3fs)" elapsed)
    true
    (elapsed <= 2. *. wall)

let test_edf_trap_feasible () =
  match Csp2.Solver.solve Examples.edf_trap ~m:Examples.edf_trap_m with
  | O.Feasible sched, _ ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible Examples.edf_trap sched)
  | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "the trap is feasible"

let test_wrapped_window_instance () =
  (* Offsets force a wrapped window; solver must handle the head/tail
     split.  τ: O=2, C=2, D=3, T=3 over hyperperiod 3: window {2,0,1}. *)
  let ts = Taskset.of_tuples [ (2, 2, 3, 3); (0, 1, 3, 3) ] in
  match Csp2.Solver.solve ts ~m:1 with
  | O.Feasible sched, _ -> Alcotest.(check bool) "verified" true (Verify.is_feasible ts sched)
  | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "feasible via wrap"

let prop_agrees_with_csp1 =
  (* Reference verdict from the CDCL path (fast on both SAT and UNSAT);
     the dedicated chronological search must match it under every
     heuristic and its schedules must verify. *)
  qtest ~count:80 "dedicated CSP2 = CSP1/SAT on random instances, all heuristics"
    (Test_util.instance_gen ~nmax:4 ~tmax:5 ())
    (fun (ts, m) ->
      let reference, _ = Encodings.Csp1_sat.solve ~budget:(budget ()) ts ~m in
      decided reference
      && List.for_all
           (fun h ->
             match Csp2.Solver.solve ~heuristic:h ~budget:(budget ()) ts ~m with
             | O.Feasible sched, _ ->
               Verify.is_feasible ts sched && O.is_feasible reference
             | O.Infeasible, _ -> not (O.is_feasible reference)
             | (O.Limit | O.Memout _), _ -> false)
           Csp2.Heuristic.all)

let prop_stats_sane =
  qtest ~count:60 "solver stats are consistent"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let _, stats = Csp2.Solver.solve ts ~m in
      stats.Csp2.Solver.nodes >= 0
      && stats.Csp2.Solver.fails >= 0
      && stats.Csp2.Solver.max_time_reached <= Taskset.hyperperiod ts)

let prop_no_urgency_agrees =
  qtest ~count:60 "urgency propagation off: still sound and complete"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let strong, _ = Csp2.Solver.solve ~budget:(budget ()) ts ~m in
      let weak, _ = Csp2.Solver.solve ~urgency:false ~budget:(budget ()) ts ~m in
      decided strong && decided weak
      && O.is_feasible strong = O.is_feasible weak
      && (match weak with O.Feasible s -> Verify.is_feasible ts s | _ -> true))

let test_no_urgency_weaker () =
  (* Same instance, same verdict, but the weak search visits at least as
     many nodes as the propagating one. *)
  let ts = Examples.running_example in
  let _, strong = Csp2.Solver.solve ts ~m:2 in
  let _, weak = Csp2.Solver.solve ~urgency:false ts ~m:2 in
  Alcotest.(check bool) "weak explores no fewer nodes" true
    (weak.Csp2.Solver.nodes >= strong.Csp2.Solver.nodes)

(* ------------------------------------------------------------------ *)
(* Optimized engine (bitsets + memo + parallel subtree splitting)       *)

let test_opt_running_example_all_heuristics () =
  List.iter
    (fun h ->
      match Csp2.Opt.solve ~heuristic:h running ~m:2 with
      | O.Feasible sched, _ ->
        Alcotest.(check bool)
          (Printf.sprintf "verified (%s)" (Csp2.Heuristic.to_string h))
          true (Verify.is_feasible running sched)
      | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "running example is feasible")
    Csp2.Heuristic.all

let prop_opt_matches_classic =
  (* The tentpole's soundness gate: the memoized bitset engine and the
     classic search must return the same verdict on every instance, and
     every schedule it produces must verify.  Node counts may differ (the
     memo and the capacity bound prune), verdicts may not. *)
  qtest ~count:120 "opt = classic verdicts on random instances"
    (Test_util.instance_gen ~nmax:5 ~tmax:5 ())
    (fun (ts, m) ->
      let classic, _ = Csp2.Solver.solve ~budget:(budget ()) ts ~m in
      let opt, _ = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
      decided classic && decided opt
      && O.is_feasible classic = O.is_feasible opt
      && (match opt with O.Feasible s -> Verify.is_feasible ts s | _ -> true))

let prop_opt_parallel_matches_sequential =
  (* Subtree splitting must not change the verdict: --jobs 1 and --jobs 3
     agree (the witness schedule may differ; it must still verify). *)
  qtest ~count:80 "opt parallel (jobs=3) = opt sequential"
    (Test_util.instance_gen ~nmax:5 ~tmax:5 ())
    (fun (ts, m) ->
      let seq, _ = Csp2.Opt.solve_parallel ~jobs:1 ~budget:(budget ()) ts ~m in
      let par, par_st =
        Csp2.Opt.solve_parallel ~jobs:3 ~split_depth:2 ~budget:(budget ()) ts ~m
      in
      decided seq && decided par
      && O.is_feasible seq = O.is_feasible par
      && par_st.Csp2.Opt.steals >= 0
      && (match par with O.Feasible s -> Verify.is_feasible ts s | _ -> true))

let prop_opt_domains_preserve_verdict =
  (* Analyzer facts seed the opt engine exactly like the classic one:
     verdicts must be unchanged with pruned domains installed. *)
  qtest ~count:60 "opt with analyzer domains = opt without"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match (Analysis.analyze ts ~m).Analysis.verdict with
      | Analysis.Infeasible _ | Analysis.Trivially_feasible _ -> true
      | Analysis.Pruned d ->
        let bare, _ = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
        let pruned, _ = Csp2.Opt.solve ~budget:(budget ()) ~domains:d ts ~m in
        decided bare && decided pruned && O.is_feasible bare = O.is_feasible pruned)

let prop_opt_nogood_ablation_matches =
  (* Nogood learning is a pruning accelerator, never a decision change:
     learning on, learning off and the classic engine agree on every
     instance, sequentially and through the work-stealing phase. *)
  qtest ~count:60 "nogoods on = off = classic (seq and jobs=2)"
    (Test_util.instance_gen ~nmax:5 ~tmax:5 ())
    (fun (ts, m) ->
      let classic, _ = Csp2.Solver.solve ~budget:(budget ()) ts ~m in
      let on_, _ = Csp2.Opt.solve ~nogoods:true ~budget:(budget ()) ts ~m in
      let off, _ = Csp2.Opt.solve ~nogoods:false ~budget:(budget ()) ts ~m in
      let par_on, _ =
        Csp2.Opt.solve_parallel ~nogoods:true ~jobs:2 ~split_depth:2 ~budget:(budget ()) ts
          ~m
      in
      let par_off, _ =
        Csp2.Opt.solve_parallel ~nogoods:false ~jobs:2 ~split_depth:2 ~budget:(budget ())
          ts ~m
      in
      decided classic && decided on_ && decided off && decided par_on && decided par_off
      && O.is_feasible classic = O.is_feasible on_
      && O.is_feasible on_ = O.is_feasible off
      && O.is_feasible on_ = O.is_feasible par_on
      && O.is_feasible on_ = O.is_feasible par_off
      && (match on_ with O.Feasible s -> Verify.is_feasible ts s | _ -> true))

let test_opt_nogood_budget_evicts () =
  (* One combined --memo-mb budget covers both tables: at 1 MiB the
     nogood store's slice is a few dozen entries on Table-I-sized
     instances, so a backtrack-heavy batch must recycle entries
     (activity-based eviction), never grow without bound — and the
     squeezed store must not change any verdict. *)
  let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:11 ~count:25 params in
  let evicted = ref 0 and stores = ref 0 in
  Array.iter
    (fun (ts, m) ->
      let tiny, st = Csp2.Opt.solve ~memo_mb:1 ~budget:(budget ()) ts ~m in
      let roomy, _ = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
      evicted := !evicted + st.Csp2.Opt.nogood_evicted;
      stores := !stores + st.Csp2.Opt.nogood_stores;
      Alcotest.(check bool) "tiny/roomy verdicts equal" true
        (decided tiny && decided roomy && O.is_feasible tiny = O.is_feasible roomy))
    instances;
  Alcotest.(check bool)
    (Printf.sprintf "tiny budget evicted (stores=%d evicted=%d)" !stores !evicted)
    true (!evicted > 0)

let test_opt_deterministic () =
  (* Fixed Zobrist seed + deterministic search: equal runs, equal counters. *)
  let run () =
    match Csp2.Opt.solve running ~m:2 with
    | O.Feasible sched, stats -> (sched, stats)
    | _ -> Alcotest.fail "feasible"
  in
  let s1, st1 = run () and s2, st2 = run () in
  Alcotest.(check bool) "same schedule" true (Schedule.equal s1 s2);
  check Alcotest.int "same node count" st1.Csp2.Opt.nodes st2.Csp2.Opt.nodes;
  check Alcotest.int "same memo hits" st1.Csp2.Opt.memo_hits st2.Csp2.Opt.memo_hits;
  check Alcotest.int "same memo stores" st1.Csp2.Opt.memo_stores st2.Csp2.Opt.memo_stores

let test_opt_memo_prunes () =
  (* On a backtrack-heavy batch (the Table I regime) the memo must
     actually fire, and turning it off ([memo_mb <= 0]) must not change
     any verdict. *)
  let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:11 ~count:25 params in
  let hits = ref 0 in
  Array.iter
    (fun (ts, m) ->
      let with_memo, st = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
      let without, _ = Csp2.Opt.solve ~memo_mb:0 ~budget:(budget ()) ts ~m in
      hits := !hits + st.Csp2.Opt.memo_hits;
      Alcotest.(check bool) "memo on/off verdicts equal" true
        (decided with_memo && decided without
        && O.is_feasible with_memo = O.is_feasible without))
    instances;
  Alcotest.(check bool) "memo pruned at least once across the batch" true (!hits > 0)

let test_opt_node_reduction () =
  (* The perf claim in miniature: across a searched batch the optimized
     engine explores fewer nodes than the classic one at equal verdicts. *)
  let params = Gen.Generator.default ~n:8 ~m:(Gen.Generator.Fixed_m 3) ~tmax:6 in
  let instances = Gen.Generator.batch ~seed:11 ~count:25 params in
  let classic_nodes = ref 0 and opt_nodes = ref 0 in
  Array.iter
    (fun (ts, m) ->
      let c, cst = Csp2.Solver.solve ~budget:(budget ()) ts ~m in
      let o, ost = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
      if decided c && decided o then begin
        classic_nodes := !classic_nodes + cst.Csp2.Solver.nodes;
        opt_nodes := !opt_nodes + ost.Csp2.Opt.nodes
      end)
    instances;
  Alcotest.(check bool)
    (Printf.sprintf "opt nodes (%d) < classic nodes (%d)" !opt_nodes !classic_nodes)
    true
    (!opt_nodes < !classic_nodes)

let test_opt_wall_budget_respected () =
  (* Wall budgets must cut both the sequential loop and the parallel race
     promptly, whatever the verdict. *)
  let params = Gen.Generator.default ~n:12 ~m:(Gen.Generator.Fixed_m 4) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:2 ~count:5 params in
  let wall = 0.05 in
  Array.iter
    (fun (ts, m) ->
      List.iter
        (fun jobs ->
          let t0 = Prelude.Timer.start () in
          let _ =
            Csp2.Opt.solve_parallel ~jobs ~budget:(Prelude.Timer.budget ~wall_s:wall ()) ts ~m
          in
          let elapsed = Prelude.Timer.elapsed t0 in
          Alcotest.(check bool)
            (Printf.sprintf "returned within budget slack (jobs=%d, took %.3fs)" jobs elapsed)
            true
            (elapsed <= (2. *. wall) +. 0.1))
        [ 1; 3 ])
    instances

let test_opt_node_budget () =
  let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:5 ~count:30 params in
  let limited = ref false in
  Array.iter
    (fun (ts, m) ->
      match Csp2.Opt.solve ~budget:(Prelude.Timer.budget ~nodes:50 ()) ts ~m with
      | O.Limit, _ -> limited := true
      | (O.Feasible _ | O.Infeasible | O.Memout _), _ -> ())
    instances;
  Alcotest.(check bool) "some run hits the node budget" true !limited

let test_opt_wrapped_windows () =
  let ts = Taskset.of_tuples [ (2, 2, 3, 3); (0, 1, 3, 3) ] in
  (match Csp2.Opt.solve ts ~m:1 with
  | O.Feasible sched, _ -> Alcotest.(check bool) "verified" true (Verify.is_feasible ts sched)
  | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "feasible via wrap");
  match Csp2.Opt.solve_parallel ~jobs:2 ~split_depth:1 ts ~m:1 with
  | O.Feasible sched, _ ->
    Alcotest.(check bool) "parallel verified" true (Verify.is_feasible ts sched)
  | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "feasible via wrap (parallel)"

let test_frame_reuse_regression () =
  (* Guards the frame-stack rework in both engines: [Array.make] would
     seed every depth with the *same* frame record (one shared applied
     set corrupts [undo] on deep backtracking).  The EDF trap backtracks
     across slots; verdict and witness must survive two runs intact. *)
  List.iter
    (fun solve ->
      let a = solve () and b = solve () in
      Alcotest.(check bool) "deterministic across reuse" true (Schedule.equal a b))
    [
      (fun () ->
        match Csp2.Solver.solve Examples.edf_trap ~m:Examples.edf_trap_m with
        | O.Feasible s, _ ->
          Alcotest.(check bool) "classic verified" true
            (Verify.is_feasible Examples.edf_trap s);
          s
        | _ -> Alcotest.fail "edf trap is feasible");
      (fun () ->
        match Csp2.Opt.solve Examples.edf_trap ~m:Examples.edf_trap_m with
        | O.Feasible s, _ ->
          Alcotest.(check bool) "opt verified" true (Verify.is_feasible Examples.edf_trap s);
          s
        | _ -> Alcotest.fail "edf trap is feasible");
    ]

(* ------------------------------------------------------------------ *)
(* Work-stealing parallel phase, engine pooling                         *)

let prop_opt_worksteal_matches_sequential =
  (* [probe_nodes:0] disables the sequential probe, so small random
     instances actually flow through the deques — otherwise the probe
     would decide them all and this property would only test the probe.
     Every processed item must have been pulled or stolen. *)
  qtest ~count:60 "work-stealing phase (probe off) = sequential"
    (Test_util.instance_gen ~nmax:5 ~tmax:5 ())
    (fun (ts, m) ->
      let seq, _ = Csp2.Opt.solve_parallel ~jobs:1 ~budget:(budget ()) ts ~m in
      let par, st =
        Csp2.Opt.solve_parallel ~jobs:3 ~split_depth:2 ~probe_nodes:0 ~budget:(budget ())
          ts ~m
      in
      decided seq && decided par
      && O.is_feasible seq = O.is_feasible par
      && st.Csp2.Opt.pulls + st.Csp2.Opt.steals >= st.Csp2.Opt.subtrees
      && (match par with O.Feasible s -> Verify.is_feasible ts s | _ -> true))

let test_opt_pool_memo_epoch () =
  (* Engine pooling must be invisible: solving B, then a different
     instance A, then B again reuses one domain-cached engine whose memo
     was only epoch-bumped between solves.  If invalidation leaked any
     entry across task sets, B's second run would see hits the first did
     not (or worse, a wrong verdict from a stale refutation). *)
  let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:11 ~count:2 params in
  let a_ts, a_m = instances.(0) and b_ts, b_m = instances.(1) in
  let run ts m =
    let o, st = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
    (O.is_feasible o, st.Csp2.Opt.nodes, st.Csp2.Opt.memo_hits, st.Csp2.Opt.memo_stores)
  in
  let f1, n1, h1, s1 = run b_ts b_m in
  let (_ : bool * int * int * int) = run a_ts a_m in
  let f2, n2, h2, s2 = run b_ts b_m in
  Alcotest.(check bool) "same verdict across reuse" f1 f2;
  check Alcotest.int "same node count across reuse" n1 n2;
  check Alcotest.int "same memo hits across reuse" h1 h2;
  check Alcotest.int "same memo stores across reuse" s1 s2

let test_opt_pool_nogood_epoch () =
  (* The nogood store (chain heads in an Epoch_dict, rem vectors in an
     Arena) is rebound, not re-allocated, between pooled solves: solving
     B, then A, then B again must reproduce B's verdict and its full
     counter set exactly.  Any arena offset or chain head surviving the
     epoch bump would show up as drifted hits/stores on the second run. *)
  let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
  let instances = Gen.Generator.batch ~seed:13 ~count:2 params in
  let a_ts, a_m = instances.(0) and b_ts, b_m = instances.(1) in
  let run ts m =
    let o, st = Csp2.Opt.solve ~budget:(budget ()) ts ~m in
    ( O.is_feasible o,
      st.Csp2.Opt.nodes,
      (st.Csp2.Opt.nogood_hits, st.Csp2.Opt.nogood_stores, st.Csp2.Opt.nogood_evicted) )
  in
  let f1, n1, ng1 = run b_ts b_m in
  let (_ : bool * int * (int * int * int)) = run a_ts a_m in
  let f2, n2, ng2 = run b_ts b_m in
  Alcotest.(check bool) "same verdict across reuse" f1 f2;
  check Alcotest.int "same node count across reuse" n1 n2;
  check
    Alcotest.(triple int int int)
    "same nogood hits/stores/evictions across reuse" ng1 ng2

let test_pool_reuses_domains () =
  let before = Csp2.Pool.spawned_count () in
  for _ = 1 to 5 do
    Csp2.Pool.run ~jobs:3 (fun _ -> ())
  done;
  let after = Csp2.Pool.spawned_count () in
  Alcotest.(check bool)
    (Printf.sprintf "5 runs at jobs=3 spawned at most 2 domains (spawned %d)"
       (after - before))
    true
    (after - before <= 2)

let test_opt_parallel_cancel_mid_race () =
  (* External cancellation must tear the whole work-stealing race down
     promptly — workers parked between steals included — and degrade the
     verdict to [Limit].  The instance must be hard for the *opt* engine
     specifically (the classic wall-budget workhorse is pruned to zero
     nodes here): this one still searches after 0.5 s sequentially, so
     the race cannot decide before the cancel lands. *)
  let params = Gen.Generator.default ~n:16 ~m:(Gen.Generator.Fixed_m 5) ~tmax:12 in
  let ts, m = (Gen.Generator.batch ~seed:4 ~count:2 params).(1) in
  let b = Prelude.Timer.budget () in
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.03;
        Prelude.Timer.cancel b)
  in
  let t0 = Prelude.Timer.start () in
  let outcome, _ =
    Csp2.Opt.solve_parallel ~jobs:2 ~split_depth:2 ~probe_nodes:0 ~budget:b ts ~m
  in
  let elapsed = Prelude.Timer.elapsed t0 in
  Domain.join canceller;
  (match outcome with
  | O.Limit -> ()
  | O.Feasible _ | O.Infeasible | O.Memout _ ->
    Alcotest.fail "expected Limit from a mid-race cancel");
  Alcotest.(check bool)
    (Printf.sprintf "race tore down promptly (took %.3fs)" elapsed)
    true (elapsed <= 1.0)

let test_opt_steal_failpoint () =
  let module F = Resilience.Failpoint in
  let module S = Resilience.Supervise in
  F.reset ();
  Fun.protect ~finally:F.reset @@ fun () ->
  F.arm "csp2opt.steal" (F.Raise (F.Failure_msg "injected steal crash"));
  (* Outside a supervision scope an armed site is inert — production
     parallel solves must be unaffected even with the site armed. *)
  let seq, _ = Csp2.Opt.solve running ~m:2 in
  let par, _ =
    Csp2.Opt.solve_parallel ~jobs:2 ~split_depth:2 ~probe_nodes:0 ~budget:(budget ())
      running ~m:2
  in
  Alcotest.(check bool) "unsupervised verdict unchanged" true
    (decided par && O.is_feasible par = O.is_feasible seq);
  (* Under supervision the site fires on whichever worker first runs out
     of local work (the pool propagates the scope to its domains), and
     the crash must come back contained — not hang the race, not poison
     the verdict with a fabricated decision.  The instance must keep the
     race alive long enough for a steal attempt: this one is still
     searching after 0.5 s sequentially. *)
  let params = Gen.Generator.default ~n:16 ~m:(Gen.Generator.Fixed_m 5) ~tmax:12 in
  let ts, m = (Gen.Generator.batch ~seed:4 ~count:2 params).(1) in
  match
    S.protect ~name:"steal-crash" (fun () ->
        Csp2.Opt.solve_parallel ~jobs:2 ~split_depth:2 ~probe_nodes:0
          ~budget:(Prelude.Timer.budget ~wall_s:2.0 ())
          ts ~m)
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "armed steal site did not fire under supervision"

(* ------------------------------------------------------------------ *)
(* Heterogeneous dedicated solver                                       *)

let test_het_dedicated_example () =
  let ts, platform = Examples.dedicated in
  match Csp2.Het.solve ~platform ts with
  | O.Feasible sched, _ ->
    Alcotest.(check bool) "verified under rates" true (Verify.is_feasible ~platform ts sched)
  | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "dedicated example is feasible"

let test_het_idle_necessity () =
  (* Regression for the no-idle rule unsoundness with rates: C=5 within a
     5-slot window on processors with rates (3, 2) completes only as
     3 + 2 — three slots stay idle and in two of them a processor idles
     while the task is still eligible on it, which the (forced) no-idle
     rule would prune. *)
  let ts = Taskset.of_tuples [ (0, 5, 5, 5) ] in
  let platform = Platform.heterogeneous ~rates:[| [| 3; 2 |] |] in
  match Csp2.Het.solve ~platform ts with
  | O.Feasible sched, _ ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible ~platform ts sched)
  | (O.Infeasible | O.Limit | O.Memout _), _ ->
    Alcotest.fail "feasible only with an eligible-but-idle slot (no-idle must be off)"

let test_het_exact_demand_overshoot () =
  (* C=1 but the only processor has rate 2: every slot overshoots, so the
     exact demand (12) makes the system infeasible. *)
  let ts = Taskset.of_tuples [ (0, 1, 2, 2) ] in
  let platform = Platform.heterogeneous ~rates:[| [| 2 |] |] in
  match Csp2.Het.solve ~platform ts with
  | O.Infeasible, _ -> ()
  | (O.Feasible _ | O.Limit | O.Memout _), _ -> Alcotest.fail "rate-2-only C=1 is infeasible"

let test_het_identical_platform_agrees () =
  (* On an identical platform the heterogeneous solver must agree with the
     fast path. *)
  let platform = Platform.identical ~m:2 in
  let a, _ = Csp2.Het.solve ~platform running in
  let b, _ = Csp2.Solver.solve running ~m:2 in
  Alcotest.(check bool) "same verdict" true (O.is_feasible a = O.is_feasible b)

let prop_het_agrees_with_generic =
  let gen =
    let open QCheck2.Gen in
    Test_util.taskset_gen ~nmax:3 ~tmax:3 () >>= fun ts ->
    Test_util.platform_gen ~n:(Taskset.size ts) >>= fun platform -> return (ts, platform)
  in
  qtest ~count:60 "het dedicated = CSP2-fd on random heterogeneous instances" gen
    (fun (ts, platform) ->
      let m = Platform.processors platform in
      let a, _ = Csp2.Het.solve ~platform ~budget:(budget ()) ts in
      let b, _ = Encodings.Csp2_fd.solve ~platform ~budget:(budget ()) ts ~m in
      decided a && decided b
      && O.is_feasible a = O.is_feasible b
      && match a with O.Feasible s -> Verify.is_feasible ~platform ts s | _ -> true)

let () =
  Alcotest.run "csp2"
    [
      ( "heuristic",
        [
          Alcotest.test_case "keys" `Quick test_heuristic_keys;
          Alcotest.test_case "order and rank" `Quick test_heuristic_order;
          Alcotest.test_case "string roundtrip" `Quick test_heuristic_strings;
        ] );
      ( "identical",
        [
          Alcotest.test_case "running example, all heuristics" `Quick
            test_running_example_all_heuristics;
          Alcotest.test_case "infeasibility proof" `Quick test_infeasible_proof;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "node budget" `Quick test_budget_limit;
          Alcotest.test_case "wall budget regression" `Quick test_wall_budget_respected;
          Alcotest.test_case "EDF trap" `Quick test_edf_trap_feasible;
          Alcotest.test_case "wrapped windows" `Quick test_wrapped_window_instance;
          prop_agrees_with_csp1;
          prop_stats_sane;
          prop_no_urgency_agrees;
          Alcotest.test_case "urgency off is weaker" `Quick test_no_urgency_weaker;
        ] );
      ( "optimized",
        [
          Alcotest.test_case "running example, all heuristics" `Quick
            test_opt_running_example_all_heuristics;
          prop_opt_matches_classic;
          prop_opt_parallel_matches_sequential;
          prop_opt_domains_preserve_verdict;
          prop_opt_nogood_ablation_matches;
          Alcotest.test_case "deterministic counters" `Quick test_opt_deterministic;
          Alcotest.test_case "memo prunes and stays sound" `Quick test_opt_memo_prunes;
          Alcotest.test_case "fewer nodes than classic" `Quick test_opt_node_reduction;
          Alcotest.test_case "wall budget regression" `Quick test_opt_wall_budget_respected;
          Alcotest.test_case "node budget" `Quick test_opt_node_budget;
          Alcotest.test_case "wrapped windows" `Quick test_opt_wrapped_windows;
          Alcotest.test_case "frame reuse regression" `Quick test_frame_reuse_regression;
        ] );
      ( "work-stealing",
        [
          prop_opt_worksteal_matches_sequential;
          Alcotest.test_case "tiny budget evicts nogoods" `Quick test_opt_nogood_budget_evicts;
          Alcotest.test_case "nogood epoch isolates pooled solves" `Quick
            test_opt_pool_nogood_epoch;
          Alcotest.test_case "memo epoch isolates pooled solves" `Quick
            test_opt_pool_memo_epoch;
          Alcotest.test_case "pool reuses domains" `Quick test_pool_reuses_domains;
          Alcotest.test_case "cancel mid-race" `Quick test_opt_parallel_cancel_mid_race;
          Alcotest.test_case "steal failpoint contained" `Quick test_opt_steal_failpoint;
        ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "dedicated example" `Quick test_het_dedicated_example;
          Alcotest.test_case "idle necessity regression" `Quick test_het_idle_necessity;
          Alcotest.test_case "overshoot infeasible" `Quick test_het_exact_demand_overshoot;
          Alcotest.test_case "identical platform agreement" `Quick
            test_het_identical_platform_agrees;
          prop_het_agrees_with_generic;
        ] );
    ]
