(* Tests for the Domains-based parallel portfolio: verdict agreement with
   the sequential backends, prompt cooperative cancellation of losing
   arms, the no-winner outcome, and the Core facade / summary line. *)

open Rt_model
module O = Encodings.Outcome
module P = Portfolio

let check = Alcotest.check
let qtest = Test_util.qtest

let running = Examples.running_example

(* The CI failpoints job reruns this whole suite with one injection site
   armed (MGRTS_FAILPOINTS).  Containment must keep every race sound, but
   a test that pins *which* arm wins, or how fast, can legitimately see a
   different story when its decisive arm is the one being crashed — those
   few assertions relax under injection. *)
let injected () = Resilience.Failpoint.armed ()
let arm_crashed (b : P.backend_stats) = match b.P.status with P.Crashed _ -> true | _ -> false

(* The regression workhorse: r > 1, so the only decisive verdict is an
   exhaustive infeasibility proof — quick with urgency propagation on,
   endless for local search. *)
let hard_instance () =
  let params = Gen.Generator.default ~n:12 ~m:(Gen.Generator.Fixed_m 4) ~tmax:7 in
  (Gen.Generator.batch ~seed:1 ~count:1 params).(0)

let test_feasible_matches_sequential () =
  let r = P.solve running ~m:2 in
  (match r.P.verdict with
  | O.Feasible sched ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible running sched)
  | O.Infeasible | O.Limit | O.Memout _ -> Alcotest.fail "running example is feasible on m=2");
  Alcotest.(check bool) "a decisive arm won" true (r.P.winner <> None);
  Alcotest.(check bool) "exactly one winner flag" true
    (List.length (List.filter (fun (b : P.backend_stats) -> b.winner) r.P.backends) = 1)

let test_infeasible_matches_sequential () =
  let r = P.solve running ~m:1 in
  (match r.P.verdict with
  | O.Infeasible -> ()
  | O.Feasible _ | O.Limit | O.Memout _ -> Alcotest.fail "running example is infeasible on m=1");
  Alcotest.(check bool) "a decisive arm won" true (r.P.winner <> None)

let test_job_counts_agree () =
  (* Same verdict whatever the parallelism, including the sequential
     single-domain race. *)
  List.iter
    (fun jobs ->
      let r = P.solve ~jobs running ~m:2 in
      Alcotest.(check bool)
        (Printf.sprintf "feasible with %d job(s)" jobs)
        true
        (O.is_feasible r.P.verdict))
    [ 1; 2; 4; 8 ]

let test_cancellation_prompt () =
  (* An infeasible instance under a generous backstop budget: the complete
     arm refutes it quickly and must cancel the local-search arm (which
     can never prove infeasibility and would otherwise spin until the
     wall limit). *)
  let ts, m = hard_instance () in
  let backstop = if injected () then 5. else 30. in
  let t0 = Prelude.Timer.start () in
  (* [analyze:false]: this test exercises the race's cancellation
     machinery, which needs an arm to actually search — the static
     analyzer would refute the instance before any arm starts. *)
  let r =
    P.solve
      ~specs:[ P.Csp2 Csp2.Heuristic.DC; P.Local_search ]
      ~jobs:2 ~analyze:false
      ~budget:(Prelude.Timer.budget ~wall_s:backstop ())
      ts ~m
  in
  let elapsed = Prelude.Timer.elapsed t0 in
  match r.P.verdict with
  | O.Infeasible ->
    check Alcotest.(option string) "complete arm wins" (Some "csp2+D-C") r.P.winner;
    Alcotest.(check bool)
      (Printf.sprintf "losers cancelled promptly (%.3fs)" elapsed)
      true
      (elapsed < backstop /. 3.)
  | O.Limit when injected () && List.exists arm_crashed r.P.backends ->
    (* The only complete arm was the one crashed by the injection matrix:
       containment leaves an honest [Limit], not a wrong verdict. *)
    ()
  | O.Feasible _ | O.Limit | O.Memout _ -> Alcotest.fail "r > 1: expected an infeasibility proof"

(* Regression: [Timer.cancel] on the race budget must interrupt the whole
   race — both the analyzer pre-pass (which runs under a [Timer.sub] of
   the caller's budget, not a disconnected fresh one) and the racing arms
   (whose [with_stop] budget keeps the caller's flag watched).  Before the
   fix, a cancel landing after the race installed its internal stop flag
   was never observed and the race ran to its wall limit. *)
let test_external_cancel_stops_race () =
  let ts, m = hard_instance () in
  let backstop = 30. in
  let budget = Prelude.Timer.budget ~wall_s:backstop () in
  let t0 = Prelude.Timer.start () in
  (* Cancel from another domain shortly after the race starts; local
     search alone can never decide the infeasible instance, so without the
     cancel the race would only end at the backstop wall. *)
  let canceller =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Prelude.Timer.cancel budget)
  in
  let r =
    match P.solve ~specs:[ P.Local_search ] ~jobs:1 ~analyze:false ~budget ts ~m with
    | r -> Some r
    | exception P.All_arms_crashed _ when injected () ->
      (* The injection matrix crashed the only arm of this race before the
         cancel could land — nothing left to assert about cancellation. *)
      None
  in
  Domain.join canceller;
  let elapsed = Prelude.Timer.elapsed t0 in
  match r with
  | None -> ()
  | Some r ->
    (match r.P.verdict with
    | O.Limit -> ()
    | O.Feasible _ | O.Infeasible | O.Memout _ -> Alcotest.fail "expected Limit after cancel");
    Alcotest.(check bool) "no winner" true (r.P.winner = None);
    Alcotest.(check bool)
      (Printf.sprintf "cancel landed promptly (%.3fs)" elapsed)
      true
      (elapsed < backstop /. 3.)

let test_cancel_before_race_skips_analysis () =
  (* A budget cancelled before the call returns [Limit] without running
     the analyzer or any arm: every arm reports, none decisive. *)
  let ts, m = hard_instance () in
  let budget = Prelude.Timer.budget ~wall_s:30. () in
  Prelude.Timer.cancel budget;
  let t0 = Prelude.Timer.start () in
  let r = P.solve ~budget ts ~m in
  let elapsed = Prelude.Timer.elapsed t0 in
  (match r.P.verdict with
  | O.Limit -> ()
  | O.Feasible _ | O.Infeasible | O.Memout _ -> Alcotest.fail "expected Limit");
  Alcotest.(check bool) "no winner" true (r.P.winner = None);
  Alcotest.(check bool) "analyzer skipped" true
    (List.for_all (fun (b : P.backend_stats) -> b.P.name <> P.analysis_arm_name) r.P.backends);
  Alcotest.(check bool) (Printf.sprintf "returned promptly (%.3fs)" elapsed) true (elapsed < 5.)

let test_no_winner_is_limit () =
  (* One node per arm decides nothing; the race must degrade to [Limit]
     with no winner rather than invent a verdict.  The optimized arm is
     excluded on purpose: its root-level aggregate capacity bound refutes
     this instance in zero nodes, which would (correctly) produce a
     winner even under a one-node budget. *)
  let ts, m = hard_instance () in
  let r =
    P.solve
      ~specs:[ P.Csp2 Csp2.Heuristic.DC; P.Csp1_sat; P.Local_search ]
      ~analyze:false
      ~budget:(Prelude.Timer.budget ~nodes:1 ())
      ts ~m
  in
  (match r.P.verdict with
  | O.Limit -> ()
  | O.Feasible _ | O.Infeasible | O.Memout _ -> Alcotest.fail "expected Limit");
  Alcotest.(check bool) "no winner" true (r.P.winner = None);
  Alcotest.(check bool) "no arm flagged" true
    (List.for_all (fun (b : P.backend_stats) -> not b.winner) r.P.backends)

let test_summary_line () =
  let r = P.solve running ~m:2 in
  let s = P.summary r in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "tagged" true (contains "portfolio: feasible");
  Alcotest.(check bool) "winner marked" true (contains "*");
  (* Every arm appears, started or not. *)
  List.iter (fun b -> Alcotest.(check bool) b.P.name true (contains b.P.name)) r.P.backends

let test_static_analysis_arm () =
  (* Arm 0: a statically refutable instance ends the race before any
     search arm starts — the analyzer is the winner and every spec shows
     as never-started. *)
  let ts, m = hard_instance () in
  let r = P.solve ts ~m in
  (match r.P.verdict with
  | O.Infeasible -> ()
  | O.Feasible _ | O.Limit | O.Memout _ -> Alcotest.fail "r > 1: expected a refutation");
  check Alcotest.(option string) "analyzer wins" (Some P.analysis_arm_name) r.P.winner;
  List.iter
    (fun (b : P.backend_stats) ->
      if b.P.name <> P.analysis_arm_name then
        Alcotest.(check bool) (b.P.name ^ " never started") true (b.P.outcome = None))
    r.P.backends;
  (* A feasible race still lists the analyzer arm first, non-decisive. *)
  let r = P.solve running ~m:2 in
  match r.P.backends with
  | arm0 :: _ ->
    check Alcotest.string "arm 0 is the analyzer" P.analysis_arm_name arm0.P.name;
    Alcotest.(check bool) "non-decisive analysis is not a winner" false arm0.P.winner
  | [] -> Alcotest.fail "no backends reported"

let test_invalid_args () =
  Alcotest.check_raises "empty specs" (Invalid_argument "Portfolio.solve: empty backend list")
    (fun () -> ignore (P.solve ~specs:[] running ~m:2));
  Alcotest.check_raises "m = 0" (Invalid_argument "Portfolio.solve: m must be >= 1") (fun () ->
      ignore (P.solve running ~m:0))

(* ------------------------------------------------------------------ *)
(* Core facade                                                          *)

let test_core_portfolio_solver () =
  (match Core.solve ~solver:(Core.Portfolio 4) running ~m:2 with
  | Core.Feasible _, _ -> ()
  | (Core.Infeasible | Core.Limit | Core.Memout _), _ -> Alcotest.fail "feasible on m=2");
  match Core.solve ~solver:(Core.Portfolio 4) running ~m:1 with
  | Core.Infeasible, _ -> ()
  | (Core.Feasible _ | Core.Limit | Core.Memout _), _ -> Alcotest.fail "infeasible on m=1"

let test_core_solve_portfolio_arbitrary_deadlines () =
  (* D > T forces the clone transform; the facade verifies the winning
     clone schedule and maps it back to original task ids. *)
  let ts = Examples.arbitrary_deadline in
  let r = Core.solve_portfolio ts ~m:2 in
  match r.P.verdict with
  | O.Feasible sched ->
    let clone_hp = Taskset.hyperperiod (Clone.cloned (Clone.transform ts)) in
    check Alcotest.int "horizon is the clone hyperperiod" clone_hp (Schedule.horizon sched)
  | O.Infeasible | O.Limit | O.Memout _ -> Alcotest.fail "arbitrary-deadline example is feasible"

let prop_agrees_with_sat =
  qtest ~count:30 "portfolio verdict = CSP1/SAT on random instances"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let budget = Prelude.Timer.budget ~wall_s:5.0 () in
      let reference, _ = Encodings.Csp1_sat.solve ~budget ts ~m in
      let r = P.solve ~jobs:2 ~budget ts ~m in
      match (reference, r.P.verdict) with
      | O.Feasible _, O.Feasible sched -> Verify.is_feasible ts sched
      | O.Infeasible, O.Infeasible -> true
      | _ -> false)

let () =
  Alcotest.run "portfolio"
    [
      ( "race",
        [
          Alcotest.test_case "feasible verdict" `Quick test_feasible_matches_sequential;
          Alcotest.test_case "infeasible verdict" `Quick test_infeasible_matches_sequential;
          Alcotest.test_case "job counts agree" `Quick test_job_counts_agree;
          Alcotest.test_case "prompt cancellation" `Quick test_cancellation_prompt;
          Alcotest.test_case "external cancel stops race" `Quick test_external_cancel_stops_race;
          Alcotest.test_case "cancel before race" `Quick test_cancel_before_race_skips_analysis;
          Alcotest.test_case "no winner = Limit" `Quick test_no_winner_is_limit;
          Alcotest.test_case "static analysis arm" `Quick test_static_analysis_arm;
          Alcotest.test_case "summary line" `Quick test_summary_line;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
      ( "facade",
        [
          Alcotest.test_case "Core.Portfolio solver" `Quick test_core_portfolio_solver;
          Alcotest.test_case "clone transform" `Quick
            test_core_solve_portfolio_arbitrary_deadlines;
          prop_agrees_with_sat;
        ] );
    ]
