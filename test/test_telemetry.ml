(* Tests for the telemetry layer: the global switch, span/instant/counter
   recording, per-domain ring buffers under Domain.spawn, heartbeat rate
   limiting and the progress callback, ring overflow accounting, the Stats
   record, and the Chrome trace-event JSON export. *)

module T = Telemetry

let check = Alcotest.check

(* Recording state is global; every test starts from a clean slate and
   leaves recording off for the next one. *)
let fresh () =
  T.stop ();
  ignore (T.drain ());
  T.set_on_progress None;
  T.set_heartbeat_interval 0.5

let test_disabled_records_nothing () =
  fresh ();
  check Alcotest.bool "disabled by default" false (T.enabled ());
  T.with_span "quiet" (fun () -> ());
  T.instant "quiet";
  T.counter "quiet" 1;
  T.heartbeat ~name:"quiet" ~nodes:1 ~fails:0 ~depth:1;
  check Alcotest.int "no events" 0 (List.length (T.drain ()))

let test_span_capture () =
  fresh ();
  T.start ();
  let r =
    T.with_span "outer" ~cat:"test" (fun () ->
        T.with_span "inner" (fun () -> ());
        41 + 1)
  in
  T.stop ();
  check Alcotest.int "body result" 42 r;
  let events = T.drain () in
  check Alcotest.int "two spans" 2 (List.length events);
  let outer = List.find (fun (e : T.event) -> e.T.e_name = "outer") events in
  let inner = List.find (fun (e : T.event) -> e.T.e_name = "inner") events in
  check Alcotest.bool "span ph" true (outer.T.e_ph = `Span);
  check Alcotest.string "category" "test" outer.T.e_cat;
  check Alcotest.bool "nesting" true
    (inner.T.e_ts >= outer.T.e_ts && inner.T.e_dur <= outer.T.e_dur);
  check Alcotest.int "drained buffers stay drained" 0 (List.length (T.drain ()))

let test_span_records_on_exception () =
  fresh ();
  T.start ();
  (try T.with_span "raising" (fun () -> failwith "boom") with Failure _ -> ());
  T.stop ();
  check Alcotest.int "span recorded despite the raise" 1 (List.length (T.drain ()))

let test_counters_and_instants () =
  fresh ();
  T.start ();
  T.counter "nodes" 7;
  T.instant "marker" ~args:[ ("k", "v") ];
  T.stop ();
  let events = T.drain () in
  let c = List.find (fun (e : T.event) -> e.T.e_ph = `Counter) events in
  let i = List.find (fun (e : T.event) -> e.T.e_ph = `Instant) events in
  check Alcotest.int "counter value" 7 c.T.e_value;
  check Alcotest.string "counter name" "nodes" c.T.e_name;
  check Alcotest.bool "instant args" true (List.mem_assoc "k" i.T.e_args)

let test_per_domain_buffers () =
  (* Spawned domains record into their own rings; a single drain sees
     everything, tagged with distinct domain ids. *)
  fresh ();
  T.start ();
  T.instant "main-domain";
  let workers =
    List.init 3 (fun k ->
        Domain.spawn (fun () -> T.with_span (Printf.sprintf "worker-%d" k) (fun () -> ())))
  in
  List.iter Domain.join workers;
  T.stop ();
  let events = T.drain () in
  check Alcotest.int "all four events" 4 (List.length events);
  let tids = List.sort_uniq compare (List.map (fun (e : T.event) -> e.T.e_tid) events) in
  check Alcotest.bool "more than one recording domain" true (List.length tids >= 2)

let test_heartbeat_rate_limit_and_callback () =
  fresh ();
  let beats = ref [] in
  T.set_on_progress (Some (fun p -> beats := p :: !beats));
  T.set_heartbeat_interval 10.;
  T.start ();
  (* First call on this domain since [start] emits; the rest fall inside
     the 10 s window and must be swallowed. *)
  for i = 1 to 100 do
    T.heartbeat ~name:"solver" ~nodes:(i * 10) ~fails:i ~depth:i
  done;
  T.stop ();
  check Alcotest.int "one beat through a 10s window" 1 (List.length !beats);
  (match !beats with
  | [ p ] ->
    check Alcotest.string "name" "solver" p.T.p_name;
    check Alcotest.int "nodes" 10 p.T.p_nodes;
    check Alcotest.bool "elapsed sane" true (p.T.p_elapsed >= 0.)
  | _ -> Alcotest.fail "expected exactly one beat");
  (* Counter events carry the same sample. *)
  let events = T.drain () in
  check Alcotest.bool "nodes counter present" true
    (List.exists
       (fun (e : T.event) -> e.T.e_ph = `Counter && e.T.e_value = 10)
       events);
  T.set_on_progress None

let test_ring_overflow_drops_oldest () =
  fresh ();
  T.start ();
  (* Far more events than any plausible ring size: the drain must stay
     bounded and the drop counter must own up to the difference. *)
  let total = 200_000 in
  for i = 1 to total do
    T.counter "spin" i
  done;
  T.stop ();
  let events = T.drain () in
  let kept = List.length events in
  check Alcotest.bool "ring bounded" true (kept < total);
  check Alcotest.int "kept + dropped = recorded" total (kept + T.dropped ());
  (* The ring keeps the newest events. *)
  check Alcotest.bool "newest survive" true
    (List.exists (fun (e : T.event) -> e.T.e_value = total) events)

let test_stats_record () =
  let s = T.Stats.make ~backend:"csp2-opt" ~nodes:100 ~fails:7 ~memo_hits:3 ~memo_misses:9 () in
  check Alcotest.int "defaults stay zero" 0 s.T.Stats.steals;
  let line = T.Stats.summary s in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "summary nodes" true (contains "n=100" line);
  check Alcotest.bool "summary memo" true (contains "memo=" line);
  let json = T.Stats.to_json s in
  check Alcotest.bool "json backend" true (contains "\"backend\": \"csp2-opt\"" json);
  check Alcotest.bool "json nodes" true (contains "\"nodes\": 100" json)

let test_chrome_json_shape () =
  fresh ();
  T.start ();
  T.with_span "phase" ~cat:"core" (fun () -> T.counter "nodes" 3);
  T.instant "mark";
  T.stop ();
  let events = T.drain () in
  let stats = [ T.Stats.make ~backend:"arm" ~nodes:3 () ] in
  let json = T.to_chrome_json ~stats events in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "traceEvents array" true (contains "\"traceEvents\"");
  check Alcotest.bool "complete span" true (contains "\"ph\": \"X\"");
  check Alcotest.bool "instant" true (contains "\"ph\": \"i\"");
  check Alcotest.bool "counter" true (contains "\"ph\": \"C\"");
  check Alcotest.bool "metadata stats" true (contains "\"ph\": \"M\"");
  check Alcotest.bool "span name" true (contains "\"name\": \"phase\"");
  (* Microsecond timestamps are integers-or-floats >= 0; cheap sanity:
     the JSON parses as a single object by bracket balance. *)
  let depth = ref 0 and ok = ref true in
  String.iter
    (fun c ->
      if c = '{' || c = '[' then incr depth
      else if c = '}' || c = ']' then begin
        decr depth;
        if !depth < 0 then ok := false
      end)
    json;
  check Alcotest.bool "brackets balance" true (!ok && !depth = 0)

let test_restart_discards_stale () =
  fresh ();
  T.start ();
  T.instant "stale";
  (* No stop: a second [start] re-zeroes the clock and invalidates the
     epoch, so the stale event must not leak into the new recording. *)
  T.start ();
  T.instant "fresh";
  T.stop ();
  let events = T.drain () in
  check Alcotest.int "only the fresh event" 1 (List.length events);
  check Alcotest.string "fresh survives" "fresh"
    (match events with [ e ] -> e.T.e_name | _ -> "?")

let () =
  Alcotest.run "telemetry"
    [
      ( "recording",
        [
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "span capture" `Quick test_span_capture;
          Alcotest.test_case "span survives exceptions" `Quick test_span_records_on_exception;
          Alcotest.test_case "counters and instants" `Quick test_counters_and_instants;
          Alcotest.test_case "per-domain buffers" `Quick test_per_domain_buffers;
          Alcotest.test_case "restart discards stale events" `Quick test_restart_discards_stale;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow_drops_oldest;
        ] );
      ( "progress",
        [
          Alcotest.test_case "heartbeat rate limit + callback" `Quick
            test_heartbeat_rate_limit_and_callback;
        ] );
      ( "export",
        [
          Alcotest.test_case "stats record" `Quick test_stats_record;
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
        ] );
    ]
